(** Automatic diagnosis of low speedups (paper §7).

    The paper proposes equipping the system with diagnostic tools that
    deduce why a run parallelizes poorly — e.g. by looking at the last
    few node activations of low-speedup cycles — and make adaptive
    changes such as introducing bilinear networks. This module does
    exactly that: it runs a task on the traced simulator, classifies
    each cycle (small cycle / long serial tail / healthy), ranks the
    deepest compiled chains, and emits recommendations; it can then
    apply them and report the before/after speedup. *)

open Psme_workloads

type diagnosis = {
  d_task : string;
  d_procs : int;
  d_cycles : int;
  d_small_cycles : int;      (** cycles with too few tasks to parallelize *)
  d_long_tail_cycles : int;  (** cycles ending in a near-serial tail *)
  d_avg_tail_ratio : float;
      (** mean share of a large cycle's makespan spent with <= 2 tasks
          in the system — the Figure 6-6 signature *)
  d_deepest : (string * int) list;
      (** the five deepest production chains (name, beta depth) *)
  d_cp_ratio : float;
      (** mean [critical path / makespan] over traced cycles: the share
          of a cycle's time pinned down by its longest spawn chain *)
  d_cp_bound : float;
      (** chain-limited speedup bound of the worst cycle
          ([serial / critical path]; [infinity] if no tasks ran) *)
  d_chain_prod : (string * float) option;
      (** the production whose chain ends the longest critical path,
          with that chain's length in µs — the profiler-backed culprit
          the §7 diagnosis names *)
  d_recommend_bilinear : bool;
  d_recommend_async : bool;
  d_baseline_speedup : float;
  d_ledger : Psme_obs.Attribution.totals;
      (** summed speedup-loss ledger over the traced cycles *)
  d_dominant : string;
      (** stable name of the ledger's dominant component
          ({!Psme_obs.Attribution.component_label} renders it); [""]
          when no cycle executed tasks *)
  d_dominant_share : float;  (** its share of the total gap, 0..1 *)
  d_worst : Psme_obs.Attribution.ledger option;
      (** the worst-parallelizing cycle — the pp evidence *)
}

val diagnose : ?procs:int -> Workload.t -> diagnosis
(** Runs the task (without chunking) on the traced simulator. *)

type tuning_result = {
  t_before : float;  (** baseline speedup at the diagnosed processor count *)
  t_after : float;   (** with the recommended remedies applied *)
  t_applied : string list;  (** which remedies were applied *)
}

val apply_recommendations : Workload.t -> diagnosis -> tuning_result
(** The adaptive step: rebuild with bilinear networks for long-chain
    productions and/or asynchronous elaboration, and re-measure. *)

val pp : Format.formatter -> diagnosis -> unit
