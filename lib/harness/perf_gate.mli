(** Perf gate: compare bench documents against a committed baseline.

    Drives [bench/main.exe --gate BASELINE.json]. The verdict is on the
    {e geometric mean} of per-benchmark ratios within each section
    (e2e, micro, speedup, telemetry) — single-benchmark jitter on
    shared CI runners routinely exceeds any usable tolerance, while a
    real uniform slowdown of x shifts a section's geomean by exactly x.
    Individual outliers are reported as advisories, not failures. Every
    ratio is oriented so > 1 means "worse" (cycles/sec and speedups
    invert; ns/run and words/cycle do not). Only benchmarks present in
    both documents are compared, so the suite can grow without
    invalidating old baselines. *)

type comparison = {
  c_section : string;
  c_name : string;
  c_base : float;
  c_cur : float;
  c_ratio : float;  (** > 1 = regression, orientation already applied *)
}

type section_verdict = {
  s_section : string;
  s_count : int;
  s_geomean : float;
  s_worst : comparison option;  (** highest ratio, when over tolerance *)
}

type verdict = {
  v_sections : section_verdict list;
  v_advisories : comparison list;
      (** individual benchmarks over tolerance — informational *)
  v_tolerance : float;
  v_passed : bool;
}

val default_tolerance : float
(** 0.15: a section fails when its geomean ratio exceeds 1.15. *)

val doc_of_string : string -> (Psme_obs.Json.t, string) result
(** Parse a bench JSON document. Accepts schema ["psme-bench/1"]
    directly and ["psme-bench-compare/1"] (unwrapping its ["after"]
    section). *)

val compare_docs :
  ?tolerance:float ->
  baseline:Psme_obs.Json.t ->
  current:Psme_obs.Json.t ->
  unit ->
  verdict
(** Raises [Invalid_argument] unless [tolerance] is in (0, 1). *)

val pp : Format.formatter -> verdict -> unit

val exit_code : verdict -> int
(** 0 pass, 1 regression. (Callers use 2 for baseline/usage errors.) *)
