open Psme_obs

(* Perf gate: compare a current bench document against a committed
   baseline ("psme-bench/1", or "psme-bench-compare/1" whose "after"
   section is the tree's numbers) and fail on regression.

   Robustness: individual microbenchmarks on shared CI runners jitter
   well past any usable tolerance, so the gate's verdict is on the
   GEOMETRIC MEAN of the per-benchmark ratios within each section —
   noise averages out across ~20 benchmarks while a uniform slowdown
   of x shifts the geomean by exactly x. Per-benchmark ratios outside
   the band are reported as advisory warnings only. Sections compare
   only benchmarks present in both documents (the suite grows PR over
   PR), and each ratio is oriented so > 1 means "worse". *)

type comparison = {
  c_section : string;
  c_name : string;
  c_base : float;
  c_cur : float;
  c_ratio : float; (* > 1 = regression, oriented per metric *)
}

type section_verdict = {
  s_section : string;
  s_count : int;
  s_geomean : float;
  s_worst : comparison option;
}

type verdict = {
  v_sections : section_verdict list;
  v_advisories : comparison list; (* individual outliers, informational *)
  v_tolerance : float;
  v_passed : bool;
}

let default_tolerance = 0.15

(* --- extraction -------------------------------------------------------- *)

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let doc_of_string src =
  match Json.parse src with
  | Error e -> fail "baseline is not valid JSON: %s" e
  | Ok doc -> (
    match Json.member "schema" doc with
    | Some (Json.Str "psme-bench/1") -> Ok doc
    | Some (Json.Str "psme-bench-compare/1") -> (
      match Json.member "after" doc with
      | Some after -> Ok after
      | None -> fail "compare document has no \"after\" section")
    | Some (Json.Str s) -> fail "unsupported bench schema %S" s
    | _ -> fail "bench document has no \"schema\" field")

let float_field name j =
  Option.bind (Json.member name j) Json.to_float_opt

let str_field name j =
  match Json.member name j with Some (Json.Str s) -> Some s | _ -> None

let list_field name j =
  match Json.member name j with Some (Json.List l) -> l | _ -> []

(* Flatten a bench document into (section, name, value, higher_is_better)
   rows. Sections: e2e cycles/sec (higher better), micro ns/run (lower
   better), sim speedups (higher better; deterministic virtual time),
   telemetry per-cycle allocation (lower better). *)
let rows_of doc =
  let e2e =
    List.filter_map
      (fun entry ->
        match str_field "workload" entry, str_field "variant" entry,
              float_field "cycles_per_sec" entry with
        | Some w, Some v, Some cps when cps > 0. ->
          Some ("e2e", w ^ "/" ^ v, cps, true)
        | _ -> None)
      (list_field "e2e" doc)
  in
  let micro =
    List.filter_map
      (fun entry ->
        match str_field "name" entry, float_field "ns_per_run" entry with
        | Some n, Some ns when ns > 0. -> Some ("micro", n, ns, false)
        | _ -> None)
      (list_field "micro" doc)
  in
  let speedup =
    List.concat_map
      (fun series ->
        match str_field "workload" series, str_field "queues" series with
        | Some w, Some q ->
          List.filter_map
            (fun pt ->
              match float_field "procs" pt, float_field "speedup" pt with
              | Some procs, Some s when s > 0. ->
                Some
                  ( "speedup",
                    Printf.sprintf "%s/%s/p%.0f" w q procs,
                    s,
                    true )
              | _ -> None)
            (list_field "points" series)
        | _ -> [])
      (list_field "speedup" doc)
  in
  let telemetry =
    match Json.member "telemetry" doc with
    | None -> []
    | Some t ->
      List.filter_map
        (fun (name, higher_better) ->
          match float_field name t with
          | Some v when v > 0. -> Some ("telemetry", name, v, higher_better)
          | _ -> None)
        [ ("minor_words_per_cycle", false) ]
  in
  e2e @ micro @ speedup @ telemetry

(* --- comparison -------------------------------------------------------- *)

let sections = [ "e2e"; "micro"; "speedup"; "telemetry" ]

let compare_docs ?(tolerance = default_tolerance) ~baseline ~current () =
  if tolerance <= 0. || tolerance >= 1. then
    invalid_arg "Perf_gate.compare_docs: tolerance must be in (0, 1)";
  let base_rows = rows_of baseline in
  let cur_rows = rows_of current in
  let comparisons =
    List.filter_map
      (fun (sec, name, base, higher_better) ->
        match
          List.find_opt (fun (s, n, _, _) -> s = sec && n = name) cur_rows
        with
        | Some (_, _, cur, _) ->
          let ratio = if higher_better then base /. cur else cur /. base in
          Some { c_section = sec; c_name = name; c_base = base; c_cur = cur;
                 c_ratio = ratio }
        | None -> None)
      base_rows
  in
  let verdicts =
    List.filter_map
      (fun sec ->
        match List.filter (fun c -> c.c_section = sec) comparisons with
        | [] -> None
        | cs ->
          let n = List.length cs in
          let geomean =
            exp
              (List.fold_left (fun a c -> a +. log c.c_ratio) 0. cs
              /. float_of_int n)
          in
          let worst =
            List.fold_left
              (fun acc c ->
                match acc with
                | Some w when w.c_ratio >= c.c_ratio -> acc
                | _ -> Some c)
              None cs
          in
          Some { s_section = sec; s_count = n; s_geomean = geomean; s_worst = worst })
      sections
  in
  let advisories =
    List.filter (fun c -> c.c_ratio > 1. +. tolerance) comparisons
  in
  let passed =
    List.for_all (fun s -> s.s_geomean <= 1. +. tolerance) verdicts
  in
  { v_sections = verdicts; v_advisories = advisories; v_tolerance = tolerance;
    v_passed = passed }

let pp ppf v =
  Format.fprintf ppf "perf gate (tolerance %.0f%% on section geomeans):@."
    (100. *. v.v_tolerance);
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-10s %3d benchmark%s  geomean ratio %.3f  %s@."
        s.s_section s.s_count
        (if s.s_count = 1 then " " else "s")
        s.s_geomean
        (if s.s_geomean <= 1. +. v.v_tolerance then "ok" else "REGRESSION");
      match s.s_worst with
      | Some w when w.c_ratio > 1. +. v.v_tolerance ->
        Format.fprintf ppf "             worst: %s  %.4g -> %.4g (x%.2f)@."
          w.c_name w.c_base w.c_cur w.c_ratio
      | _ -> ())
    v.v_sections;
  List.iter
    (fun c ->
      Format.fprintf ppf "  advisory: %s/%s x%.2f (%.4g -> %.4g)@." c.c_section
        c.c_name c.c_ratio c.c_base c.c_cur)
    v.v_advisories;
  Format.fprintf ppf "  verdict: %s@." (if v.v_passed then "PASS" else "FAIL")

(* Exit codes: 0 pass, 1 regression, 2 baseline/usage error — stable
   for CI. *)
let exit_code v = if v.v_passed then 0 else 1
